// Non-owning view over a contiguous range of read pairs.
//
// A ReadPairSpan is to ReadPairSet what std::string_view is to
// std::string: a (pointer, length) pair that slices in O(1). It is the
// argument type of the whole batch stack (align::BatchAligner::run and
// the native align_batch APIs), so the hybrid dispatcher, the engine's
// sharded submission and the calibration probes carve sub-batches without
// copying a single base - the data-movement class the PIM design exists
// to eliminate. ReadPairSet converts implicitly, so owning callers keep
// working unchanged.
//
// Lifetime contract: a span borrows the set's pair storage. The set must
// outlive every span over it, and any mutation of the set (add/load/
// move-from) invalidates existing spans, exactly like vector iterators.
// Take the span after the batch is fully built; re-take it after
// mutating.
//
// Lifetime checking: with PIMWFA_CHECKED_VIEWS (see seq/lifetime.hpp) a
// span taken from a set records the set's detached control block and the
// generation it borrowed at; every element access, slicing call and
// engine hand-off re-validates the borrow and throws pimwfa::LifetimeError
// - naming the file:line where the span was taken - the moment the
// contract above is violated. Spans built from a raw (pointer, size) are
// unchecked by design: there is no owner to track. Without the option the
// span is exactly {pointer, size} (statically asserted below) and every
// check compiles to nothing.
#pragma once

#include <atomic>
#include <string_view>

#include "seq/dataset.hpp"
#include "seq/lifetime.hpp"

namespace pimwfa::seq {

// Process-wide count of bases deep-copied by the owning carve APIs
// (ReadPairSet::slice / sample_every, ReadPairSpan::to_owned). The
// dispatchers snapshot it around a run and report the delta as
// BatchTimings::bases_copied; the CI perf gate pins that delta to zero so
// an O(total bases) copy cannot silently return to the hot path.
//
// One atomic, not thread_local: copies performed on pool worker threads
// must be visible to the dispatcher thread that snapshots the delta (a
// thread_local counter silently under-counted exactly the multi-threaded
// runs the gate exists for). All accesses are std::memory_order_relaxed -
// it is a statistic, never a synchronization edge; snapshot deltas are
// exact only while no unrelated run copies concurrently, which is the
// pinned-to-zero regime the gate enforces.
std::atomic<u64>& bases_copied_counter() noexcept;

class ReadPairSpan {
 public:
  ReadPairSpan() = default;
  // Raw-pointer span: unchecked by design (no owning set to track); for
  // callers that manage the storage lifetime themselves.
  ReadPairSpan(const ReadPair* data, usize size) : data_(data), size_(size) {}
  // Implicit: view the whole owning set (the migration path for existing
  // callers that hold a ReadPairSet).
#if PIMWFA_CHECKED_VIEWS
  ReadPairSpan(const ReadPairSet& set,
               std::source_location origin = std::source_location::current());
#else
  ReadPairSpan(const ReadPairSet& set)
      : data_(set.pairs().data()), size_(set.size()) {}
#endif

  usize size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  const ReadPair& operator[](usize i) const {
    check_valid();
    return data_[i];
  }
  std::string_view pattern(usize i) const {
    check_valid();
    return data_[i].pattern;
  }
  std::string_view text(usize i) const {
    check_valid();
    return data_[i].text;
  }

  const ReadPair* data() const PIMWFA_VIEW_NOEXCEPT {
    check_valid();
    return data_;
  }
  const ReadPair* begin() const PIMWFA_VIEW_NOEXCEPT {
    check_valid();
    return data_;
  }
  const ReadPair* end() const PIMWFA_VIEW_NOEXCEPT {
    check_valid();
    return data_ + size_;
  }

  // The sub-view [begin, end) in O(1); throws InvalidArgument when
  // begin > end or end > size(). Bounds misuse is a caller bug, never
  // silently clamped: a sub-batch is an exact work assignment, and a
  // clamped one would silently drop pairs from the batch.
  ReadPairSpan subspan(usize begin, usize end) const;
  // The first min(n, size()) pairs. Clamping (unlike subspan) is the
  // contract here, not leniency: first() expresses a *sampling budget* -
  // "up to n pairs for calibration" - and a batch smaller than the budget
  // is a valid sample of itself, not a caller bug.
  ReadPairSpan first(usize n) const;

  // Longest pattern/text over the viewed pairs (0 for an empty span); the
  // PIM layout sizes its per-pair MRAM slots from these.
  usize max_pattern_length() const PIMWFA_VIEW_NOEXCEPT;
  usize max_text_length() const PIMWFA_VIEW_NOEXCEPT;
  u64 total_bases() const PIMWFA_VIEW_NOEXCEPT;

  // Deep-copy the viewed pairs into an owning set (tests, persistence).
  // Accounts the copied bases in bases_copied_counter(). A span does not
  // know its source set's generation provenance (seed/error_rate/
  // nominal_read_length), so the copy carries none; use
  // ReadPairSet::slice when that metadata must survive.
  ReadPairSet to_owned() const;

  // Validate the borrow now; throws LifetimeError when the source set has
  // mutated or died since the span was taken. The engine calls this at
  // dispatch and again at task start, so a dangling submission fails in
  // the caller's frame when possible and deterministically in the task
  // otherwise. No-op for raw spans and in unchecked builds.
  void check_valid() const PIMWFA_VIEW_NOEXCEPT {
#if PIMWFA_CHECKED_VIEWS
    // Delegates so the throwing and non-throwing paths can never
    // disagree on what "stale" means. valid() guards the dereference
    // (null control_ is a raw, unchecked span).
    if (!valid()) detail::throw_lifetime_error(*control_, generation_, origin_);
#endif
  }
  // Non-throwing probe of the same condition (diagnostics, tests).
  bool valid() const noexcept {
#if PIMWFA_CHECKED_VIEWS
    return !control_ ||
           (control_->alive.load(std::memory_order_acquire) &&
            control_->generation.load(std::memory_order_acquire) ==
                generation_);
#else
    return true;
#endif
  }

 private:
  const ReadPair* data_ = nullptr;
  usize size_ = 0;
#if PIMWFA_CHECKED_VIEWS
  // The borrow: which storage this span tracks, the generation it was
  // taken at, and where it was taken (the origin named by LifetimeError).
  // Sub-spans inherit all three - the borrow began where the first span
  // was carved from the set.
  detail::ViewControlPtr control_{};
  u64 generation_ = 0;
  std::source_location origin_{};
#endif
};

#if !PIMWFA_CHECKED_VIEWS
// The whole point of the build option: without it, a span is exactly the
// {pointer, size} pair the zero-copy hot paths were designed around.
static_assert(sizeof(ReadPairSpan) == sizeof(void*) + sizeof(usize),
              "ReadPairSpan must stay {pointer, size} when lifetime "
              "checking is compiled out");
#endif

}  // namespace pimwfa::seq
