// Chunked, pipelined execution planning for the PIM batch aligner.
//
// The synchronous path runs the batch as one scatter -> kernel -> gather
// sequence, so the modeled Total is strictly additive even though real
// UPMEM systems transfer and compute independently. Pipelined mode splits
// every DPU's pair share into `chunks` contiguous slices and overlaps
// scatter(i+1), kernel(i) and gather(i-1):
//
//        scatter: [0][1][2][3]
//        kernel :    [0][1][2][3]
//        gather :       [0][1][2][3]
//
// Each stage is a serial resource (the host->device bus, the DPUs, the
// device->host bus), so the makespan follows the classic software-pipeline
// recurrence; for homogeneous chunks it collapses to
//
//   Total = fill + steady-state + drain
//         = S_0 + (chunks-1) * max(S, K, G) + remaining stage times
//
// i.e. the steady state is governed by the slowest stage alone - which is
// what attacks the Fig. 1 transfer share: at paper scale the kernel hides
// most of the scatter/gather time (or vice versa at high E).
//
// PipelineSchedule picks the chunk count: enough chunks that the slowest
// stage dominates, but few enough that per-launch overheads (kernel launch
// cost, per-launch header staging) stay a small fraction of the work.
// Results are bit-identical to the synchronous path by construction - the
// same pair records land at the same MRAM addresses and the same kernel
// aligns them - and the differential suite asserts it.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace pimwfa::pim {

// Modeled stage costs of one chunk.
struct ChunkTiming {
  double scatter_seconds = 0;
  // Kernel stage busy time (slowest DPU + launch overhead). Used directly
  // as a serial stage when no per-DPU detail is provided.
  double kernel_seconds = 0;
  double gather_seconds = 0;

  // Optional async-launch detail: per-DPU kernel seconds for this chunk,
  // plus the host dispatch cost. UPMEM hosts launch ranks asynchronously,
  // so a DPU may start its chunk i+1 as soon as its own chunk i finished
  // and the data arrived - only the gather of a chunk waits for every DPU.
  // Modeling this per-DPU removes the spurious serialization a global
  // chunk barrier would add when per-pair costs vary.
  double launch_overhead_seconds = 0;
  std::vector<double> dpu_kernel_seconds;
};

// Makespan of a chunk sequence under the three-stage pipeline recurrence.
struct PipelineModel {
  double total_seconds = 0;        // overlapped end-to-end makespan
  double fill_seconds = 0;         // first chunk's scatter (pipeline lead-in)
  double drain_seconds = 0;        // last chunk's gather (pipeline tail)
  double steady_state_seconds = 0; // total - fill - drain
  double overlap_saved_seconds = 0;// additive sum - total

  static PipelineModel from_chunks(std::span<const ChunkTiming> chunks);
};

class PipelineSchedule {
 public:
  struct Params {
    usize pairs = 0;        // virtual batch size
    usize nr_dpus = 0;      // logical DPUs the batch is spread over
    usize nr_tasklets = 1;
    usize nr_ranks = 1;
    u64 scatter_bytes = 0;  // whole-batch host->device volume
    u64 gather_bytes = 0;   // whole-batch device->host volume
    double host_bandwidth = 1.0;          // bytes/s at this rank count
    double launch_overhead_seconds = 0;   // fixed cost per kernel launch
    usize requested_chunks = 0;           // 0 = planner's choice
    usize max_chunks = 64;
  };

  // Plans the chunk count. Returns a 1-chunk (synchronous) schedule when
  // chunking cannot pay for its overheads.
  static PipelineSchedule plan(const Params& params);

  usize chunks() const noexcept { return chunks_; }
  bool pipelined() const noexcept { return chunks_ > 1; }
  const Params& params() const noexcept { return params_; }

  // Chunk `c`'s slice of an n-pair DPU share: contiguous [begin, end)
  // ranges that exactly partition [0, n). Slice boundaries fall on
  // multiples of `granule` (the tasklet count): a T-tasklet kernel launch
  // over s pairs costs max-per-tasklet = ceil(s / T) pair times, so
  // unaligned slices would each round up and the summed chunk kernels
  // would exceed the one-launch kernel. Aligned slices keep the sum equal
  // to the synchronous kernel (plus per-launch setup).
  static std::pair<usize, usize> slice(usize n, usize chunks, usize c,
                                       usize granule = 1);

 private:
  PipelineSchedule(Params params, usize chunks)
      : params_(std::move(params)), chunks_(chunks) {}

  Params params_;
  usize chunks_ = 1;
};

}  // namespace pimwfa::pim
