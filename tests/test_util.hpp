// Shared helpers for the pimwfa test suite.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "align/penalties.hpp"
#include "common/rng.hpp"
#include "seq/generator.hpp"

namespace pimwfa::testing {

// A random (pattern, text) pair where the text is the pattern mutated by
// `errors` random edits.
inline seq::ReadPair random_pair(Rng& rng, usize length, usize errors) {
  seq::ReadPair pair;
  pair.pattern = seq::random_sequence(rng, length);
  pair.text = seq::mutate_sequence(rng, pair.pattern, errors);
  return pair;
}

// A fully random (unrelated) pair, worst case for aligners.
inline seq::ReadPair unrelated_pair(Rng& rng, usize pattern_length,
                                    usize text_length) {
  return {seq::random_sequence(rng, pattern_length),
          seq::random_sequence(rng, text_length)};
}

// --- differential-testing support ---------------------------------------

// One cell of the length x error-rate x penalty sweep the differential
// suite cross-checks aligners over. The seed is derived from the cell so
// every configuration sees a distinct but reproducible workload.
struct DiffConfig {
  usize length = 100;
  double error_rate = 0.02;
  align::Penalties penalties = align::Penalties::defaults();
  u64 seed = 0;

  // gtest-safe name fragment: "len100_e2pct_x4o6e2".
  std::string name() const {
    return "len" + std::to_string(length) + "_e" +
           std::to_string(static_cast<int>(error_rate * 100 + 0.5)) +
           "pct_x" + std::to_string(penalties.mismatch) + "o" +
           std::to_string(penalties.gap_open) + "e" +
           std::to_string(penalties.gap_extend);
  }
};

inline std::ostream& operator<<(std::ostream& os, const DiffConfig& c) {
  return os << c.name();
}

// Derive a deterministic per-config seed so sweep cells don't share pairs.
inline u64 diff_seed(const DiffConfig& c) {
  u64 state = 0xD1FFu ^ (static_cast<u64>(c.length) << 32) ^
              static_cast<u64>(c.error_rate * 1e6) ^
              (static_cast<u64>(static_cast<u32>(c.penalties.mismatch)) << 48) ^
              (static_cast<u64>(static_cast<u32>(c.penalties.gap_open)) << 16) ^
              static_cast<u64>(static_cast<u32>(c.penalties.gap_extend));
  return splitmix64(state);
}

// The config's randomized workload: `pairs` mutated read pairs.
inline seq::ReadPairSet diff_batch(const DiffConfig& c, usize pairs) {
  seq::GeneratorConfig generator;
  generator.pairs = pairs;
  generator.read_length = c.length;
  generator.error_rate = c.error_rate;
  generator.seed = c.seed ? c.seed : diff_seed(c);
  return seq::generate_dataset(generator);
}

// Full cross product of the sweep axes.
inline std::vector<DiffConfig> diff_cross(
    const std::vector<usize>& lengths, const std::vector<double>& error_rates,
    const std::vector<align::Penalties>& penalty_sets) {
  std::vector<DiffConfig> configs;
  for (const usize length : lengths)
    for (const double error_rate : error_rates)
      for (const align::Penalties& penalties : penalty_sets)
        configs.push_back({length, error_rate, penalties, 0});
  return configs;
}

}  // namespace pimwfa::testing
