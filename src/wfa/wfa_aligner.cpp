#include "wfa/wfa_aligner.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace pimwfa::wfa {
namespace {

inline Offset max3(Offset a, Offset b, Offset c) noexcept {
  return std::max(a, std::max(b, c));
}

using Component = WfaAligner::Component;

// True when wavefront row `set` completes a (sub)alignment that must end
// in `end`: that component's offset on the final diagonal reaches the end
// of the text.
bool hits_end(const WavefrontSet& set, Component end, i32 k_final, i32 tl) {
  const Wavefront& w = end == Component::kM   ? set.m
                       : end == Component::kI ? set.i
                                              : set.d;
  return w.exists && w.at(k_final) >= tl;
}

// Gap-affine cost of `cigar` under span-boundary charging: a CIGAR that
// opens with the gap run it entered through (begin == kI/kD) pays no
// gap_open for that leading run - the upstream half already paid it.
i64 span_cost(const seq::Cigar& cigar, const align::Penalties& p,
              Component begin) {
  i64 cost = cigar.affine_score(p.mismatch, p.gap_open, p.gap_extend);
  if (!cigar.empty()) {
    const char first = cigar.ops().front();
    if ((begin == Component::kI && first == 'I') ||
        (begin == Component::kD && first == 'D')) {
      cost -= p.gap_open;
    }
  }
  return cost;
}

// Peak payload bytes a retained (kHigh) pass over this subproblem would
// bind: 3 components x sizeof(Offset) per diagonal, widths growing 2s+1
// until capped by the full band. Drives the kUltralow base-case cut.
u64 retained_bytes_estimate(i64 score, usize plen, usize tlen) {
  const i64 band = static_cast<i64>(plen + tlen + 1);
  const i64 knee = std::min(score, (band - 1) / 2);
  const u64 growing = static_cast<u64>(knee + 1) * static_cast<u64>(knee + 1);
  const u64 flat = score > knee
                       ? static_cast<u64>(score - knee) * static_cast<u64>(band)
                       : 0;
  return (growing + flat) * 3u * sizeof(Offset);
}

}  // namespace

WfaAligner::WfaAligner(Options options, WavefrontAllocator* allocator)
    : options_(options),
      kernels_(options.kernels != nullptr ? *options.kernels
                                          : scalar_kernels()) {
  options_.penalties.validate();
  PIMWFA_ARG_CHECK(options_.max_score >= 0, "max_score must be >= 0");
  PIMWFA_ARG_CHECK(
      kernels_.match_run != nullptr && kernels_.compute_row != nullptr,
      "WfaKernels must provide both match_run and compute_row");
  PIMWFA_ARG_CHECK(
      !(options_.memory_mode == MemoryMode::kUltralow &&
        options_.heuristic.enabled),
      "MemoryMode::kUltralow is exact and incompatible with the adaptive "
      "heuristic");
  if (allocator != nullptr) {
    allocator_ = allocator;
  } else {
    owned_allocator_ = std::make_unique<SlabAllocator>();
    allocator_ = owned_allocator_.get();
  }
}

void WfaAligner::note_live_bytes() {
  const u64 live = retained_bytes_ + ring_.live_bytes + rev_ring_.live_bytes;
  if (live > counters_.peak_wavefront_bytes) {
    counters_.peak_wavefront_bytes = live;
  }
}

Wavefront WfaAligner::new_wavefront(i32 lo, i32 hi) {
  PIMWFA_DCHECK(lo <= hi);
  Wavefront wf;
  wf.exists = true;
  wf.lo = lo;
  wf.hi = hi;
  const usize width = static_cast<usize>(hi - lo + 1);
  // kWavefrontPad sentinel slots on each side let a vectorized compute_row
  // read one slot past either end of a source row without masked loads
  // (see kernels.hpp). The pad is implementation slack, so only the
  // payload counts toward allocated_bytes.
  Offset* base =
      allocator_->allocate_array<Offset>(width + 2 * kWavefrontPad);
  for (usize i = 0; i < kWavefrontPad; ++i) {
    base[i] = kOffsetNone;
    base[kWavefrontPad + width + i] = kOffsetNone;
  }
  wf.offsets = base + kWavefrontPad;
  counters_.allocated_bytes += width * sizeof(Offset);
  retained_bytes_ += width * sizeof(Offset);
  note_live_bytes();
  return wf;
}

bool WfaAligner::extend_and_check(Wavefront& m, std::string_view pattern,
                                  std::string_view text) {
  if (!m.exists) return false;
  const i32 plen = static_cast<i32>(pattern.size());
  const i32 tlen = static_cast<i32>(text.size());
  const i32 k_final = tlen - plen;
  bool done = false;
  for (i32 k = m.lo; k <= m.hi; ++k) {
    Offset off = m.offsets[k - m.lo];
    if (!offset_reachable(off)) continue;
    const i32 v = off - k;
    const usize remaining = static_cast<usize>(
        std::min(plen - v, tlen - static_cast<i32>(off)));
    const usize run =
        kernels_.match_run(pattern.data() + v, text.data() + off, remaining);
    off += static_cast<Offset>(run);
    counters_.extend_matches += run;
    ++counters_.extend_probes;
    m.offsets[k - m.lo] = off;
    if (k == k_final && off >= tlen) done = true;
  }
  return done;
}

void WfaAligner::compute_next(i64 score, usize plen, usize tlen) {
  const i32 x = options_.penalties.mismatch;
  const i32 oe = options_.penalties.gap_open + options_.penalties.gap_extend;
  const i32 e = options_.penalties.gap_extend;
  const usize s = static_cast<usize>(score);

  sets_.emplace_back();  // sets_[s]; take source pointers only after this

  const Wavefront* m_sub = (score >= x) ? &sets_[s - x].m : nullptr;
  const Wavefront* m_gap = (score >= oe) ? &sets_[s - oe].m : nullptr;
  const Wavefront* i_ext = (score >= e) ? &sets_[s - e].i : nullptr;
  const Wavefront* d_ext = (score >= e) ? &sets_[s - e].d : nullptr;
  auto live = [](const Wavefront* w) { return w != nullptr && w->exists; };
  if (!live(m_sub) && !live(m_gap) && !live(i_ext) && !live(d_ext)) {
    return;  // unreachable score (hole); the set stays null
  }

  i32 lo = std::numeric_limits<i32>::max();
  i32 hi = std::numeric_limits<i32>::min();
  for (const Wavefront* w : {m_sub, m_gap, i_ext, d_ext}) {
    if (!live(w)) continue;
    lo = std::min(lo, w->lo - 1);
    hi = std::max(hi, w->hi + 1);
  }
  const i32 pl = static_cast<i32>(plen);
  const i32 tl = static_cast<i32>(tlen);
  lo = std::max(lo, -pl);  // diagonals below -plen / above tlen are invalid
  hi = std::min(hi, tl);
  if (lo > hi) return;

  WavefrontSet& out = sets_[s];
  out.m = new_wavefront(lo, hi);
  out.i = new_wavefront(lo, hi);
  out.d = new_wavefront(lo, hi);

  ComputeRowArgs args;
  args.m_sub = live(m_sub) ? m_sub : nullptr;
  args.m_gap = live(m_gap) ? m_gap : nullptr;
  args.i_ext = live(i_ext) ? i_ext : nullptr;
  args.d_ext = live(d_ext) ? d_ext : nullptr;
  args.out_m = &out.m;
  args.out_i = &out.i;
  args.out_d = &out.d;
  args.lo = lo;
  args.hi = hi;
  args.pl = pl;
  args.tl = tl;
  kernels_.compute_row(args);
  counters_.computed_cells += 3 * static_cast<u64>(hi - lo + 1);
  ++counters_.wavefront_sets;
}

namespace {

// Narrow a component to the intersection of its range with [lo, hi] by
// sliding the base pointer (allocation is untouched; the dropped cells are
// no longer addressable through at()). The dropped cells are overwritten
// with the kOffsetNone sentinel so the out-of-range overhang slots a
// vectorized compute_row may read stay semantically "unreachable" (the
// padding contract of kernels.hpp).
void shrink_wavefront(Wavefront& w, i32 lo, i32 hi) {
  if (!w.exists) return;
  const i32 new_lo = std::max(w.lo, lo);
  const i32 new_hi = std::min(w.hi, hi);
  if (new_lo > new_hi) {
    w = Wavefront{};
    return;
  }
  for (i32 k = w.lo; k < new_lo; ++k) w.set(k, kOffsetNone);
  for (i32 k = new_hi + 1; k <= w.hi; ++k) w.set(k, kOffsetNone);
  w.offsets += (new_lo - w.lo);
  w.lo = new_lo;
  w.hi = new_hi;
}

}  // namespace

void WfaAligner::reduce(WavefrontSet& set, i32 plen, i32 tlen) {
  Wavefront& m = set.m;
  if (!m.exists) return;
  const i32 length = m.hi - m.lo + 1;
  if (length <= options_.heuristic.min_wavefront_length) return;

  // Remaining anti-diagonal distance to the target corner per diagonal;
  // unreachable cells count as infinite so they fall off the edges.
  auto distance = [&](i32 k) -> i64 {
    const Offset off = m.at(k);
    if (!offset_reachable(off)) return std::numeric_limits<i64>::max();
    const i32 v = off - k;
    return static_cast<i64>(plen - v) + static_cast<i64>(tlen - off);
  };
  i64 best = std::numeric_limits<i64>::max();
  for (i32 k = m.lo; k <= m.hi; ++k) best = std::min(best, distance(k));
  if (best == std::numeric_limits<i64>::max()) return;

  const i64 cutoff = best + options_.heuristic.max_distance_diff;
  i32 new_lo = m.lo;
  i32 new_hi = m.hi;
  while (new_lo < new_hi && distance(new_lo) > cutoff) ++new_lo;
  while (new_hi > new_lo && distance(new_hi) > cutoff) --new_hi;
  if (new_lo == m.lo && new_hi == m.hi) return;

  shrink_wavefront(set.m, new_lo, new_hi);
  shrink_wavefront(set.i, new_lo, new_hi);
  shrink_wavefront(set.d, new_lo, new_hi);
}

seq::Cigar WfaAligner::backtrace(i64 final_score, std::string_view pattern,
                                 std::string_view text, Component begin,
                                 Component end) {
  const i32 x = options_.penalties.mismatch;
  const i32 oe = options_.penalties.gap_open + options_.penalties.gap_extend;
  const i32 e = options_.penalties.gap_extend;
  const i32 pl = static_cast<i32>(pattern.size());
  const i32 tl = static_cast<i32>(text.size());

  enum class State { kM, kI, kD };
  seq::Cigar cigar;
  i64 s = final_score;
  i32 k = tl - pl;
  Offset off = tl;
  State state = end == Component::kM   ? State::kM
                : end == Component::kI ? State::kI
                                       : State::kD;

  while (true) {
    const usize si = static_cast<usize>(s);
    if (state == State::kM) {
      const Offset sub =
          (s >= x) ? mismatch_candidate(sets_[si - static_cast<usize>(x)].m.at(k),
                                        k, pl, tl)
                   : kOffsetNone;
      const Offset ins = sets_[si].i.at(k);
      const Offset del = sets_[si].d.at(k);
      const Offset best = max3(sub, ins, del);
      if (!offset_reachable(best)) {
        // Start of the alignment: the score-0 seed on diagonal 0 plus its
        // initial run of matches.
        PIMWFA_CHECK(s == 0 && k == 0,
                     "WFA backtrace stuck at s=" << s << " k=" << k);
        for (Offset i = 0; i < off; ++i) cigar.push('M');
        break;
      }
      PIMWFA_CHECK(off >= best, "WFA backtrace offset regression");
      for (Offset i = best; i < off; ++i) cigar.push('M');
      off = best;
      if (sub == best) {
        cigar.push('X');
        s -= x;
        --off;
      } else if (ins == best) {
        state = State::kI;
      } else {
        state = State::kD;
      }
    } else if (state == State::kI) {
      // The span seed I[0][0] is the entry state, not an operation.
      if (begin == Component::kI && s == 0 && k == 0 && off == 0) break;
      cigar.push('I');
      const Offset open_src =
          (s >= oe) ? sets_[si - static_cast<usize>(oe)].m.at(k - 1)
                    : kOffsetNone;
      if (open_src == off - 1) {
        state = State::kM;
        s -= oe;
      } else {
        const Offset ext_src =
            (s >= e) ? sets_[si - static_cast<usize>(e)].i.at(k - 1)
                     : kOffsetNone;
        PIMWFA_CHECK(ext_src == off - 1, "WFA backtrace broken I chain");
        s -= e;
      }
      --off;
      --k;
    } else {
      if (begin == Component::kD && s == 0 && k == 0 && off == 0) break;
      cigar.push('D');
      const Offset open_src =
          (s >= oe) ? sets_[si - static_cast<usize>(oe)].m.at(k + 1)
                    : kOffsetNone;
      if (open_src == off) {
        state = State::kM;
        s -= oe;
      } else {
        const Offset ext_src =
            (s >= e) ? sets_[si - static_cast<usize>(e)].d.at(k + 1)
                     : kOffsetNone;
        PIMWFA_CHECK(ext_src == off, "WFA backtrace broken D chain");
        s -= e;
      }
      ++k;
    }
  }
  counters_.backtrace_ops += cigar.size();
  cigar.reverse();
  return cigar;
}

Wavefront WfaAligner::bind_ring_front(ScoreRing& ring, RingSlot& slot,
                                      std::vector<Offset>& storage, i32 lo,
                                      i32 hi) {
  // Rebind a slot's component over its backing vector (padded like
  // new_wavefront so the kernel's overhang contract holds here too).
  const usize width = static_cast<usize>(hi - lo + 1);
  storage.resize(width + 2 * kWavefrontPad);
  for (usize i = 0; i < kWavefrontPad; ++i) {
    storage[i] = kOffsetNone;
    storage[kWavefrontPad + width + i] = kOffsetNone;
  }
  Wavefront wf;
  wf.exists = true;
  wf.lo = lo;
  wf.hi = hi;
  wf.offsets = storage.data() + kWavefrontPad;
  const u64 bytes = width * sizeof(Offset);
  slot.bytes += bytes;
  ring.live_bytes += bytes;
  counters_.allocated_bytes += bytes;
  note_live_bytes();
  return wf;
}

void WfaAligner::ring_release(ScoreRing& ring) {
  for (RingSlot& slot : ring.slots) {
    slot.set = WavefrontSet{};
    slot.bytes = 0;
  }
  ring.live_bytes = 0;
}

void WfaAligner::update_progress(ScoreRing& ring, const Wavefront& m) {
  if (!m.exists) return;
  for (i32 k = m.lo; k <= m.hi; ++k) {
    const Offset off = m.offsets[k - m.lo];
    if (!offset_reachable(off)) continue;
    const i64 anti = 2 * static_cast<i64>(off) - k;
    if (anti > ring.max_antidiag) ring.max_antidiag = anti;
  }
}

void WfaAligner::ring_init(ScoreRing& ring, std::string_view pattern,
                           std::string_view text, Component begin) {
  const i32 x = options_.penalties.mismatch;
  const i32 oe = options_.penalties.gap_open + options_.penalties.gap_extend;
  // Deepest lookback is max(x, o+e); one extra slot for the one being
  // written.
  ring.ring_size = static_cast<usize>(std::max(x, oe)) + 1;
  if (ring.slots.size() < ring.ring_size) ring.slots.resize(ring.ring_size);
  for (RingSlot& slot : ring.slots) {
    slot.set = WavefrontSet{};
    slot.bytes = 0;
  }
  ring.live_bytes = 0;
  ring.score = 0;
  ring.max_antidiag = -1;
  ring.pattern = pattern;
  ring.text = text;
  ring.begin = begin;

  // Score 0 seed; a kI/kD begin component also seeds its gap state (with
  // the free gap-to-M transition), so the seam run extends at gap_extend
  // cost without re-paying gap_open.
  RingSlot& slot = ring.slots[0];
  slot.set.m = bind_ring_front(ring, slot, slot.m, 0, 0);
  slot.set.m.set(0, 0);
  if (begin == Component::kI) {
    slot.set.i = bind_ring_front(ring, slot, slot.i, 0, 0);
    slot.set.i.set(0, 0);
  } else if (begin == Component::kD) {
    slot.set.d = bind_ring_front(ring, slot, slot.d, 0, 0);
    slot.set.d.set(0, 0);
  }
  extend_and_check(slot.set.m, pattern, text);
  update_progress(ring, slot.set.m);
}

const WavefrontSet* WfaAligner::ring_row(const ScoreRing& ring,
                                         i64 score) const {
  if (score < 0 || score > ring.score ||
      score <= ring.score - static_cast<i64>(ring.ring_size)) {
    return nullptr;
  }
  const WavefrontSet& set =
      ring.slots[static_cast<usize>(score) % ring.ring_size].set;
  return set.any_exists() ? &set : nullptr;
}

const WavefrontSet& WfaAligner::ring_step(ScoreRing& ring) {
  const i32 x = options_.penalties.mismatch;
  const i32 oe = options_.penalties.gap_open + options_.penalties.gap_extend;
  const i32 e = options_.penalties.gap_extend;
  const i32 pl = static_cast<i32>(ring.pattern.size());
  const i32 tl = static_cast<i32>(ring.text.size());

  ++ring.score;
  ++counters_.score_steps;
  const i64 score = ring.score;
  RingSlot& out_slot = ring.slots[static_cast<usize>(score) % ring.ring_size];
  ring.live_bytes -= out_slot.bytes;
  out_slot.bytes = 0;
  out_slot.set = WavefrontSet{};  // clears the expired score-(ring) set

  // NOTE: sources can alias the output slot only if ring_size were too
  // small; ring_size > max lookback guarantees distinct slots.
  const WavefrontSet* sub_row = (score >= x) ? ring_row(ring, score - x)
                                             : nullptr;
  const WavefrontSet* gap_row = (score >= oe) ? ring_row(ring, score - oe)
                                              : nullptr;
  const WavefrontSet* ext_row = (score >= e) ? ring_row(ring, score - e)
                                             : nullptr;
  const Wavefront* m_sub =
      (sub_row != nullptr && sub_row->m.exists) ? &sub_row->m : nullptr;
  const Wavefront* m_gap =
      (gap_row != nullptr && gap_row->m.exists) ? &gap_row->m : nullptr;
  const Wavefront* i_ext =
      (ext_row != nullptr && ext_row->i.exists) ? &ext_row->i : nullptr;
  const Wavefront* d_ext =
      (ext_row != nullptr && ext_row->d.exists) ? &ext_row->d : nullptr;
  if (m_sub == nullptr && m_gap == nullptr && i_ext == nullptr &&
      d_ext == nullptr) {
    return out_slot.set;  // hole
  }

  i32 lo = std::numeric_limits<i32>::max();
  i32 hi = std::numeric_limits<i32>::min();
  for (const Wavefront* w : {m_sub, m_gap, i_ext, d_ext}) {
    if (w == nullptr) continue;
    lo = std::min(lo, w->lo - 1);
    hi = std::max(hi, w->hi + 1);
  }
  lo = std::max(lo, -pl);
  hi = std::min(hi, tl);
  if (lo > hi) return out_slot.set;

  out_slot.set.m = bind_ring_front(ring, out_slot, out_slot.m, lo, hi);
  out_slot.set.i = bind_ring_front(ring, out_slot, out_slot.i, lo, hi);
  out_slot.set.d = bind_ring_front(ring, out_slot, out_slot.d, lo, hi);
  ComputeRowArgs args;
  args.m_sub = m_sub;
  args.m_gap = m_gap;
  args.i_ext = i_ext;
  args.d_ext = d_ext;
  args.out_m = &out_slot.set.m;
  args.out_i = &out_slot.set.i;
  args.out_d = &out_slot.set.d;
  args.lo = lo;
  args.hi = hi;
  args.pl = pl;
  args.tl = tl;
  kernels_.compute_row(args);
  counters_.computed_cells += 3 * static_cast<u64>(hi - lo + 1);
  ++counters_.wavefront_sets;
  extend_and_check(out_slot.set.m, ring.pattern, ring.text);
  update_progress(ring, out_slot.set.m);
  return out_slot.set;
}

i64 WfaAligner::score_low_memory(std::string_view pattern,
                                 std::string_view text, i64 score_cap,
                                 Component begin, Component end) {
  const i32 tl = static_cast<i32>(text.size());
  const i32 k_final = tl - static_cast<i32>(pattern.size());
  ring_init(ring_, pattern, text, begin);
  bool done = hits_end(ring_.slots[0].set, end, k_final, tl);
  while (!done) {
    PIMWFA_CHECK(ring_.score < score_cap,
                 "WFA exceeded score cap " << score_cap << " (max_score option)");
    done = hits_end(ring_step(ring_), end, k_final, tl);
  }
  const i64 score = ring_.score;
  ring_release(ring_);
  return score;
}

WfaAligner::Breakpoint WfaAligner::find_breakpoint(std::string_view pattern,
                                                   std::string_view text,
                                                   Component begin,
                                                   Component end,
                                                   i64 score_cap) {
  PIMWFA_ARG_CHECK(!pattern.empty() && !text.empty(),
                   "find_breakpoint requires non-empty pattern and text");
  const i32 pl = static_cast<i32>(pattern.size());
  const i32 tl = static_cast<i32>(text.size());
  const i32 o = options_.penalties.gap_open;
  const i32 k_final = tl - pl;
  const i64 total_antidiag = static_cast<i64>(pl) + tl;

  // The reverse direction aligns the reversed strings; its begin component
  // is this problem's end component. A kI/kD end seeds the reverse gap
  // state, which leaves the END run's gap_open uncharged by the reverse
  // direction - every candidate total below re-adds it (end_shift).
  rev_pattern_.assign(pattern.rbegin(), pattern.rend());
  rev_text_.assign(text.rbegin(), text.rend());
  ring_init(ring_, pattern, text, begin);
  ring_init(rev_ring_, rev_pattern_, rev_text_, end);

  const i64 end_shift = (end == Component::kM) ? 0 : o;
  Breakpoint best;
  best.total = std::numeric_limits<i64>::max();
  bool found = false;

  // Candidate totals for a meet of forward row sf against reverse row sr:
  // an M-meet costs sf+sr; an I/D-meet merges one gap run that both
  // directions opened, sf+sr-o. Meets live on complementary diagonals
  // (k + k_rev == k_final) where the offsets jointly span the text.
  auto scan_pair = [&](const WavefrontSet& fset, i64 sf,
                       const WavefrontSet& rset, i64 sr) {
    struct Cand {
      Component comp;
      const Wavefront* f;
      const Wavefront* r;
      i64 extra;
    };
    const Cand cands[3] = {
        {Component::kM, &fset.m, &rset.m, end_shift},
        {Component::kI, &fset.i, &rset.i, end_shift - o},
        {Component::kD, &fset.d, &rset.d, end_shift - o},
    };
    for (const Cand& c : cands) {
      const i64 total = sf + sr + c.extra;
      if (total >= best.total) continue;
      if (!c.f->exists || !c.r->exists) continue;
      const i32 k_lo = std::max(c.f->lo, k_final - c.r->hi);
      const i32 k_hi = std::min(c.f->hi, k_final - c.r->lo);
      for (i32 k = k_lo; k <= k_hi; ++k) {
        const Offset hf = c.f->at(k);
        if (!offset_reachable(hf)) continue;
        const Offset hr = c.r->at(k_final - k);
        if (!offset_reachable(hr)) continue;
        if (static_cast<i64>(hf) + hr < tl) continue;
        best.total = total;
        best.score_forward = sf;
        best.score_reverse = sr;
        best.k = k;
        best.offset = hf;
        best.comp = c.comp;
        found = true;
        break;
      }
    }
  };
  auto scan_new_row = [&](bool forward_new) {
    const ScoreRing& a = forward_new ? ring_ : rev_ring_;
    const ScoreRing& b = forward_new ? rev_ring_ : ring_;
    const WavefrontSet* row_a = ring_row(a, a.score);
    if (row_a == nullptr) return;
    const i64 sb_lo =
        std::max<i64>(0, b.score - static_cast<i64>(b.ring_size) + 1);
    for (i64 sb = sb_lo; sb <= b.score; ++sb) {
      const WavefrontSet* row_b = ring_row(b, sb);
      if (row_b == nullptr) continue;
      if (forward_new) {
        scan_pair(*row_a, a.score, *row_b, sb);
      } else {
        scan_pair(*row_b, sb, *row_a, a.score);
      }
    }
  };
  // Tiny problems: the two score-0 rows may already overlap.
  if (ring_.max_antidiag + rev_ring_.max_antidiag >= total_antidiag) {
    scan_new_row(true);
  }

  const i64 lookback = static_cast<i64>(ring_.ring_size) - 1;
  while (true) {
    // Cheapest total any not-yet-scanned (sf, sr) pair could still
    // produce: every future scan pairs a strictly newer row with a window
    // partner at most `lookback` behind the then-current opposite score.
    const i64 future_min = ring_.score + rev_ring_.score + 1 - lookback - o;
    if (found && future_min >= best.total) break;
    PIMWFA_CHECK(future_min <= score_cap,
                 "WFA exceeded score cap " << score_cap << " (max_score option)");
    // Advance the direction that has made less anti-diagonal progress, so
    // an unbalanced optimal split (errors clustered in one half) still
    // meets inside the retained window.
    const bool forward = ring_.max_antidiag <= rev_ring_.max_antidiag;
    ring_step(forward ? ring_ : rev_ring_);
    if (ring_.max_antidiag + rev_ring_.max_antidiag >= total_antidiag) {
      scan_new_row(forward);
    }
  }
  ring_release(ring_);
  ring_release(rev_ring_);
  PIMWFA_CHECK(best.total <= score_cap,
               "WFA exceeded score cap " << score_cap << " (max_score option)");
  return best;
}

i64 WfaAligner::ultralow_recurse(std::string_view pattern,
                                 std::string_view text, Component begin,
                                 Component end, i64 score_cap,
                                 seq::Cigar& out) {
  const usize plen = pattern.size();
  const usize tlen = text.size();
  const i32 o = options_.penalties.gap_open;
  const i32 e = options_.penalties.gap_extend;

  // Degenerate halves: a single gap run, free of gap_open when it
  // continues the begin component's seam run.
  if (plen == 0 || tlen == 0) {
    for (usize i = 0; i < tlen; ++i) out.push('I');
    for (usize i = 0; i < plen; ++i) out.push('D');
    if (tlen > 0) {
      return (begin == Component::kI ? 0 : o) + static_cast<i64>(tlen) * e;
    }
    if (plen > 0) {
      return (begin == Component::kD ? 0 : o) + static_cast<i64>(plen) * e;
    }
    return 0;
  }

  const Breakpoint bp = find_breakpoint(pattern, text, begin, end, score_cap);
  const i32 v = bp.offset - bp.k;
  const i32 h = bp.offset;
  const bool corner =
      (v == 0 && h == 0) ||
      (v == static_cast<i32>(plen) && h == static_cast<i32>(tlen));
  if (corner || retained_bytes_estimate(bp.total, plen, tlen) <=
                    options_.ultralow_base_wavefront_bytes) {
    align::AlignmentResult res = align_retained(
        pattern, text, align::AlignmentScope::kFull, begin, end, bp.total);
    PIMWFA_CHECK(res.score == bp.total,
                 "kUltralow base case score " << res.score
                                              << " != bidirectional score "
                                              << bp.total);
    for (char op : res.cigar.ops()) out.push(op);
    return bp.total;
  }

  // The right half's own cost can exceed bp.score_reverse by the end-run's
  // gap_open that the reverse seeding exempted (see find_breakpoint).
  const i64 end_shift = (end == Component::kM) ? 0 : o;
  const i64 left = ultralow_recurse(pattern.substr(0, static_cast<usize>(v)),
                                    text.substr(0, static_cast<usize>(h)),
                                    begin, bp.comp, bp.score_forward, out);
  const i64 right = ultralow_recurse(pattern.substr(static_cast<usize>(v)),
                                     text.substr(static_cast<usize>(h)),
                                     bp.comp, end,
                                     bp.score_reverse + end_shift, out);
  PIMWFA_CHECK(left + right == bp.total,
               "kUltralow halves cost " << left << "+" << right
                                        << " != bidirectional score "
                                        << bp.total);
  return bp.total;
}

align::AlignmentResult WfaAligner::align_retained(std::string_view pattern,
                                                  std::string_view text,
                                                  align::AlignmentScope scope,
                                                  Component begin,
                                                  Component end,
                                                  i64 score_cap) {
  const usize plen = pattern.size();
  const usize tlen = text.size();
  const i32 tl = static_cast<i32>(tlen);
  const i32 k_final = tl - static_cast<i32>(plen);
  allocator_->reset();
  sets_.clear();
  retained_bytes_ = 0;

  sets_.emplace_back();
  sets_[0].m = new_wavefront(0, 0);
  sets_[0].m.set(0, 0);
  if (begin == Component::kI) {
    sets_[0].i = new_wavefront(0, 0);
    sets_[0].i.set(0, 0);
  } else if (begin == Component::kD) {
    sets_[0].d = new_wavefront(0, 0);
    sets_[0].d.set(0, 0);
  }
  i64 score = 0;
  extend_and_check(sets_[0].m, pattern, text);
  bool done = hits_end(sets_[0], end, k_final, tl);
  while (!done) {
    if (options_.heuristic.enabled) {
      reduce(sets_[static_cast<usize>(score)], static_cast<i32>(plen),
             static_cast<i32>(tlen));
    }
    ++score;
    ++counters_.score_steps;
    PIMWFA_CHECK(score <= score_cap,
                 "WFA exceeded score cap " << score_cap << " (max_score option)");
    compute_next(score, plen, tlen);
    WavefrontSet& set = sets_[static_cast<usize>(score)];
    if (set.m.exists) extend_and_check(set.m, pattern, text);
    done = hits_end(set, end, k_final, tl);
  }

  align::AlignmentResult result;
  result.score = score;
  if (scope == align::AlignmentScope::kFull) {
    result.cigar = backtrace(score, pattern, text, begin, end);
    result.has_cigar = true;
  }
  counters_.max_score = std::max(counters_.max_score, static_cast<u64>(score));
  return result;
}

align::AlignmentResult WfaAligner::align(std::string_view pattern,
                                         std::string_view text,
                                         align::AlignmentScope scope) {
  return align_span(pattern, text, scope, Component::kM, Component::kM);
}

align::AlignmentResult WfaAligner::align_span(std::string_view pattern,
                                              std::string_view text,
                                              align::AlignmentScope scope,
                                              Component begin, Component end) {
  const usize plen = pattern.size();
  const usize tlen = text.size();
  ++counters_.alignments;

  align::AlignmentResult result;

  // Degenerate inputs: the alignment is a single gap (or nothing), free of
  // gap_open when it continues the begin component's seam run.
  if (plen == 0 || tlen == 0) {
    const i32 o = options_.penalties.gap_open;
    const i32 e = options_.penalties.gap_extend;
    if (tlen > 0) {
      result.score =
          (begin == Component::kI ? 0 : o) + static_cast<i64>(tlen) * e;
    } else if (plen > 0) {
      result.score =
          (begin == Component::kD ? 0 : o) + static_cast<i64>(plen) * e;
    }
    if (scope == align::AlignmentScope::kFull) {
      seq::Cigar cigar;
      for (usize i = 0; i < tlen; ++i) cigar.push('I');
      for (usize i = 0; i < plen; ++i) cigar.push('D');
      result.cigar = std::move(cigar);
      result.has_cigar = true;
    }
    counters_.max_score =
        std::max(counters_.max_score, static_cast<u64>(result.score));
    return result;
  }

  const i64 score_cap =
      options_.max_score > 0
          ? options_.max_score
          : align::worst_case_score(options_.penalties, plen, tlen);

  if (options_.memory_mode == MemoryMode::kUltralow) {
    if (scope == align::AlignmentScope::kScoreOnly) {
      result.score = find_breakpoint(pattern, text, begin, end, score_cap).total;
    } else {
      seq::Cigar cigar;
      const i64 total =
          ultralow_recurse(pattern, text, begin, end, score_cap, cigar);
      // The stitched CIGAR is verified before it leaves: it must consume
      // exactly the inputs and cost exactly the bidirectional score.
      PIMWFA_CHECK(
          cigar.pattern_length() == plen && cigar.text_length() == tlen,
          "kUltralow stitched CIGAR consumes " << cigar.pattern_length() << "/"
                                               << cigar.text_length()
                                               << " of " << plen << "/"
                                               << tlen);
      const i64 cost = span_cost(cigar, options_.penalties, begin);
      PIMWFA_CHECK(cost == total, "kUltralow stitched CIGAR costs "
                                      << cost << ", bidirectional score is "
                                      << total);
      result.score = total;
      result.cigar = std::move(cigar);
      result.has_cigar = true;
    }
    counters_.max_score =
        std::max(counters_.max_score, static_cast<u64>(result.score));
    return result;
  }

  if (options_.memory_mode == MemoryMode::kLow &&
      scope == align::AlignmentScope::kScoreOnly &&
      !options_.heuristic.enabled) {
    result.score = score_low_memory(pattern, text, score_cap, begin, end);
    counters_.max_score =
        std::max(counters_.max_score, static_cast<u64>(result.score));
    return result;
  }

  return align_retained(pattern, text, scope, begin, end, score_cap);
}

}  // namespace pimwfa::wfa
