// Ext-1 (the paper's stated future work): scaling to longer read lengths.
// Sweeps read length at fixed E and reports per-DPU kernel throughput,
// WFA work growth, and where WRAM pressure starts to force the tasklet
// count down (long reads need larger per-tasklet sequence/CIGAR buffers).
#include <iostream>

#include "align/penalties.hpp"
#include "common/bench_report.hpp"
#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/timer.hpp"
#include "pim/host.hpp"
#include "seq/generator.hpp"
#include "wfa/wfa_aligner.hpp"

int main(int argc, char** argv) {
  using namespace pimwfa;
  Cli cli(argc, argv);
  cli.set_description("Read-length scaling of the PIM WFA kernel");
  const double error_rate =
      cli.get_double("error-rate", 0.02, "edit-distance threshold");
  const usize bases = static_cast<usize>(cli.get_int(
      "bases", 160'000, "total bases per DPU (pairs = bases/length)"));
  const std::string json =
      cli.get_string("json", "", "write a BenchReport here");
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  std::cout << "Ext-1: read-length scaling (E=" << error_rate * 100
            << "%, constant " << with_commas(bases) << " bases/DPU)\n\n";
  std::cout << strprintf("  %-8s %-7s %-9s %14s %16s %14s\n", "length",
                         "pairs", "tasklets", "kernel", "bases/s/DPU",
                         "cells/pair");
  std::cout << "  " << std::string(74, '-') << "\n";

  BenchReport report("readlen");
  report.set_param("error_rate", error_rate);
  report.set_param("bases", static_cast<i64>(bases));

  for (const usize length :
       {100u, 250u, 500u, 1000u, 2000u, 4000u, 10'000u, 100'000u}) {
    const usize pairs = std::max<usize>(bases / length, 1);
    seq::GeneratorConfig gen;
    gen.pairs = pairs;
    gen.read_length = length;
    gen.error_rate = error_rate;
    gen.seed = 0x1E4 + length;
    const seq::ReadPairSet batch = seq::generate_dataset(gen);

    // Cap the score at what an E-bounded workload can reach (plus slack);
    // the worst case over 4000bp would blow the descriptor table.
    const usize errors = seq::errors_for(length, error_rate);
    const align::Penalties penalties = align::Penalties::defaults();
    const u64 cap = 8 * static_cast<u64>(errors + 4) *
                    static_cast<u64>(std::max(
                        penalties.mismatch,
                        penalties.gap_open + penalties.gap_extend));

    // Long reads need big WRAM buffers: find the largest tasklet count
    // that fits untiled (the paper's deployment constraint - tiling is
    // disabled here on purpose so the WRAM wall stays visible; the
    // kUltralow row below and bench_longread show the unlock).
    for (usize tasklets = 24; tasklets >= 1; tasklets /= 2) {
      pim::PimOptions options;
      options.system = upmem::SystemConfig::tiny(1);
      options.nr_tasklets = tasklets;
      options.max_score = cap;
      options.tile_long_pairs = false;
      try {
        pim::PimBatchAligner aligner(options);
        const pim::PimBatchResult result =
            aligner.align_batch(batch, align::AlignmentScope::kFull);
        const double seconds = result.timings.kernel_seconds;
        const double bases_per_s =
            static_cast<double>(pairs) * static_cast<double>(length) / seconds;
        report.add_metric(strprintf("kernel_seconds_len%zu", length), seconds,
                          "s");
        report.add_metric(strprintf("bases_per_second_len%zu", length),
                          bases_per_s, "bases/s");
        report.add_metric(strprintf("tasklets_len%zu", length),
                          static_cast<double>(tasklets));
        const u64 cells =
            result.timings.work.instructions / std::max<u64>(pairs, 1);
        std::cout << strprintf("  %-8zu %-7zu %-9zu %14s %16s %14s\n", length,
                               pairs, tasklets,
                               format_seconds(seconds).c_str(),
                               with_commas(static_cast<u64>(bases_per_s)).c_str(),
                               with_commas(cells).c_str());
        break;
      } catch (const Error&) {
        // Untiled run rejected (WRAM/arena shortfall); try fewer tasklets.
        if (tasklets == 1) {
          std::cout << strprintf("  %-8zu %-7zu %s\n", length, pairs,
                                 "does not fit untiled even with 1 tasklet");
          break;
        }
      }
    }

    // The same cell under kUltralow on the host: the long-read memory
    // mode. Peak live wavefront bytes go into the JSON per cell, and
    // lengths the untiled kernel cannot host at all still get a number.
    wfa::WfaAligner::Options ultra_options;
    ultra_options.penalties = penalties;
    ultra_options.memory_mode = wfa::WfaAligner::MemoryMode::kUltralow;
    wfa::WfaAligner ultra(ultra_options);
    WallTimer ultra_timer;
    for (usize i = 0; i < batch.size(); ++i) {
      ultra.align(batch[i].pattern, batch[i].text,
                  align::AlignmentScope::kFull);
    }
    const double ultra_seconds = ultra_timer.seconds();
    const u64 peak = ultra.counters().peak_wavefront_bytes;
    report.add_metric(strprintf("peak_wavefront_bytes_len%zu", length),
                      static_cast<double>(peak), "bytes");
    report.add_metric(strprintf("ultralow_seconds_len%zu", length),
                      ultra_seconds, "s");
    std::cout << strprintf("  %-8s ultralow: peak %s wavefront bytes, %s\n",
                           "", with_commas(peak).c_str(),
                           format_seconds(ultra_seconds).c_str());
  }
  std::cout << "\nWFA work grows with the score (O(s^2) cells + O(n)"
               " extension), and WRAM buffer\npressure cuts the feasible"
               " tasklet count for long reads - the reason the paper\n"
               "lists longer reads as future work.\n";
  if (!json.empty()) {
    report.write(json);
    std::cout << "BenchReport written to " << json << "\n";
  }
  return 0;
}
