#include "seq/generator.hpp"

#include <cmath>

#include "common/check.hpp"
#include "seq/alphabet.hpp"

namespace pimwfa::seq {

std::string random_sequence(Rng& rng, usize length) {
  std::string out(length, '\0');
  for (usize i = 0; i < length; ++i) {
    out[i] = decode_base(static_cast<u8>(rng.next_below(kAlphabetSize)));
  }
  return out;
}

std::string mutate_sequence(Rng& rng, const std::string& sequence, usize errors,
                            const MutationProfile& profile,
                            MutationCounts* counts) {
  const double total_weight =
      profile.substitution + profile.insertion + profile.deletion;
  PIMWFA_ARG_CHECK(total_weight > 0.0, "mutation profile weights sum to zero");
  MutationCounts local;
  std::string text = sequence;
  for (usize e = 0; e < errors; ++e) {
    const double pick = rng.next_double() * total_weight;
    if (pick < profile.substitution && !text.empty()) {
      const usize pos = static_cast<usize>(rng.next_below(text.size()));
      // Replace with one of the three *other* bases so the edit is real.
      const u8 old_code = encode_base(text[pos]);
      const u8 shift = static_cast<u8>(1 + rng.next_below(kAlphabetSize - 1));
      text[pos] = decode_base(static_cast<u8>((old_code + shift) % kAlphabetSize));
      ++local.substitutions;
    } else if (pick < profile.substitution + profile.insertion) {
      const usize pos = static_cast<usize>(rng.next_below(text.size() + 1));
      const char base = decode_base(static_cast<u8>(rng.next_below(kAlphabetSize)));
      text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos), base);
      ++local.insertions;
    } else if (!text.empty()) {
      const usize pos = static_cast<usize>(rng.next_below(text.size()));
      text.erase(text.begin() + static_cast<std::ptrdiff_t>(pos));
      ++local.deletions;
    }
  }
  if (counts != nullptr) *counts = local;
  return text;
}

usize errors_for(usize read_length, double error_rate) {
  PIMWFA_ARG_CHECK(error_rate >= 0.0 && error_rate <= 1.0,
                   "error rate must be in [0,1]");
  return static_cast<usize>(
      std::ceil(static_cast<double>(read_length) * error_rate));
}

ReadPairSet generate_dataset(const GeneratorConfig& config) {
  PIMWFA_ARG_CHECK(config.read_length > 0, "read length must be positive");
  Rng rng(config.seed);
  const usize errors = errors_for(config.read_length, config.error_rate);
  ReadPairSet set;
  set.seed = config.seed;
  set.error_rate = config.error_rate;
  set.nominal_read_length = config.read_length;
  set.reserve(config.pairs);
  for (usize i = 0; i < config.pairs; ++i) {
    ReadPair pair;
    pair.pattern = random_sequence(rng, config.read_length);
    pair.text = mutate_sequence(rng, pair.pattern, errors, config.profile);
    set.add(std::move(pair));
  }
  return set;
}

ReadPairSet fig1_dataset(usize pairs, double error_rate, u64 seed) {
  GeneratorConfig config;
  config.pairs = pairs;
  config.read_length = 100;
  config.error_rate = error_rate;
  config.seed = seed;
  return generate_dataset(config);
}

}  // namespace pimwfa::seq
