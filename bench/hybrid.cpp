// Hybrid CPU+PIM dispatch vs either backend alone, on the paper-shaped
// transfer-bound configuration (full 2560-DPU system, virtual batch,
// 100bp reads at E=2%).
//
// While the PIM system aligns a batch the 56-thread CPU sits idle (and
// vice versa); the hybrid backend splits the batch proportionally to the
// two sides' modeled throughputs so neither idles. This bench pins the
// CPU model with a deterministic per-pair calibration (--cpu-t1) so the
// modeled numbers are runner-independent, verifies the hybrid's
// materialized results stay bit-identical to the pure PIM backend, and
// reports hybrid vs best-single-backend throughput; with --json it emits
// the BENCH_hybrid.json that the perf-smoke CI job gates on.
//
//   ./bench_hybrid
//   ./bench_hybrid --pairs 5000000 --sim-dpus 8
//   ./bench_hybrid --json BENCH_hybrid.json
#include <algorithm>
#include <iostream>

#include "align/batch_engine.hpp"
#include "align/hybrid.hpp"
#include "align/registry.hpp"
#include "common/bench_report.hpp"
#include "common/cli.hpp"
#include "common/strings.hpp"
#include "pim/host.hpp"
#include "seq/generator.hpp"
#include "upmem/config.hpp"

int main(int argc, char** argv) {
  using namespace pimwfa;
  Cli cli(argc, argv);
  cli.set_description(
      "Hybrid CPU+PIM dispatch vs either backend alone on the paper-scale "
      "transfer-bound configuration");
  const usize modeled_pairs = static_cast<usize>(
      cli.get_int("pairs", 2'560'000, "modeled batch size"));
  const usize sim_dpus = static_cast<usize>(
      cli.get_int("sim-dpus", 8, "DPUs simulated functionally"));
  const usize tasklets =
      static_cast<usize>(cli.get_int("tasklets", 24, "tasklets per DPU"));
  const double error_rate =
      cli.get_double("error-rate", 0.02, "edit-distance threshold");
  // 8 us/pair on one paper core: the 56-thread projection then sits on the
  // memory-bandwidth floor of the roofline - the paper's scaling plateau -
  // at ~4.9x the synchronous PIM Total for the default batch.
  const double cpu_t1 = cli.get_double(
      "cpu-t1", 8e-6, "deterministic CPU seconds/pair (0 = measure host)");
  const bool pipeline = cli.get_bool(
      "pipeline", false, "run the PIM side (and baseline) pipelined");
  // On by default: the SIMD layer is bit-identical to the scalar loop, so
  // the only effect here is the calibrator pricing the CPU side with the
  // deterministic work-counter speedup + shrunken traffic floor.
  const bool cpu_simd = cli.get_bool(
      "cpu-simd", true, "route the CPU side through the SIMD layer");
  const bool score_only =
      cli.get_bool("score-only", false, "skip CIGAR backtraces");
  const std::string json =
      cli.get_string("json", "", "write a BenchReport here");
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }

  const upmem::SystemConfig system = upmem::SystemConfig::paper();
  if (sim_dpus < 1 || sim_dpus > system.nr_dpus() ||
      modeled_pairs < system.nr_dpus()) {
    std::cerr << "bench_hybrid: need --sim-dpus in [1, " << system.nr_dpus()
              << "] and --pairs >= " << system.nr_dpus() << "\n";
    return 2;
  }
  const auto [first, last] = pim::PimBatchAligner::dpu_pair_range(
      modeled_pairs, system.nr_dpus(), sim_dpus - 1);
  (void)first;
  const seq::ReadPairSet batch = seq::fig1_dataset(last, error_rate, 0x49B);
  const auto scope = score_only ? align::AlignmentScope::kScoreOnly
                                : align::AlignmentScope::kFull;

  align::BatchOptions options;
  options.pim_dpus = 0;  // the paper's 2560-DPU system
  options.pim_tasklets = tasklets;
  options.pim_simulate_dpus = sim_dpus;
  options.pim_pipeline = pipeline;
  options.virtual_pairs = modeled_pairs;
  options.cpu_per_pair_seconds = cpu_t1;
  options.cpu_simd = cpu_simd;

  std::cout << "Hybrid CPU+PIM dispatch (" << with_commas(modeled_pairs)
            << " modeled pairs, 100bp, E=" << error_rate * 100 << "%, "
            << sim_dpus << " of " << system.nr_dpus()
            << " DPUs simulated)\n\n";

  align::HybridBatchAligner hybrid(options);
  const align::BatchResult result = hybrid.run(batch, scope);
  const align::BatchTimings& t = result.timings;
  const double best_alone = std::min(t.cpu_alone_seconds, t.pim_alone_seconds);
  const double pairs_f = static_cast<double>(modeled_pairs);

  std::cout << strprintf("  %-18s %12s %12s\n", "config", "modeled",
                         "pairs/s");
  std::cout << "  " << std::string(46, '-') << "\n";
  const auto row = [&](const char* label, double seconds) {
    std::cout << strprintf("  %-18s %12s %12s\n", label,
                           format_seconds(seconds).c_str(),
                           with_commas(static_cast<u64>(pairs_f / seconds))
                               .c_str());
  };
  row("CPU 56t alone", t.cpu_alone_seconds);
  row(pipeline ? "PIM alone (pipe)" : "PIM alone (sync)",
      t.pim_alone_seconds);
  row("hybrid", t.modeled_seconds);
  std::cout << strprintf(
      "\n  split: %s pairs on CPU (%.1f%%), %s on PIM; hybrid %.2fx the "
      "best single backend\n",
      with_commas(t.cpu_pairs).c_str(), t.cpu_fraction * 100,
      with_commas(t.pim_pairs).c_str(), best_alone / t.modeled_seconds);
  std::cout << strprintf(
      "  shares: CPU %s, PIM %s (scatter %s + kernel %s + gather %s)\n",
      format_seconds(t.cpu_modeled_seconds).c_str(),
      format_seconds(t.pim_modeled_seconds).c_str(),
      format_seconds(t.scatter_seconds).c_str(),
      format_seconds(t.kernel_seconds).c_str(),
      format_seconds(t.gather_seconds).c_str());

  // Bit-identity: the hybrid's materialized prefix (the simulated DPUs'
  // share of its PIM side) must equal the pure PIM backend on the same
  // pairs.
  align::BatchOptions pim_options = options;
  const align::BatchResult reference =
      align::backend_registry().create("pim", pim_options)->run(batch, scope);
  const usize verified =
      std::min(result.results.size(), reference.results.size());
  for (usize i = 0; i < verified; ++i) {
    if (!(result.results[i] == reference.results[i])) {
      std::cerr << "hybrid: result divergence vs the pim backend on pair "
                << i << "\n";
      return 1;
    }
  }
  std::cout << "  verified: " << with_commas(verified)
            << " materialized results bit-identical to the pim backend\n";

  // --- sharded zero-copy run --------------------------------------------
  // The engine path: the materialized batch carved into O(1) sub-views and
  // kept in flight concurrently against one hybrid backend (whose
  // calibration cache makes the per-shard probes one-time). run_sharded
  // needs fully materialized batches, so this section runs the hybrid on a
  // small fully-simulated system instead of the virtual paper system.
  align::BatchOptions sharded_options = options;
  sharded_options.virtual_pairs = 0;
  sharded_options.pim_simulate_dpus = 0;
  sharded_options.pim_dpus = 64;
  align::BatchEngineOptions engine_options;
  engine_options.backend = "hybrid";
  engine_options.batch = sharded_options;
  engine_options.max_in_flight = 2;
  engine_options.workers = 2;
  align::BatchEngine engine(engine_options);
  const align::BatchResult sharded = engine.run_sharded(batch, scope, 4);
  const align::BatchResult unsharded =
      align::backend_registry().create("hybrid", sharded_options)
          ->run(batch, scope);
  if (sharded.results.size() != batch.size() ||
      unsharded.results.size() != batch.size()) {
    std::cerr << "hybrid: sharded run materialized " << sharded.results.size()
              << " and unsharded " << unsharded.results.size() << " of "
              << batch.size() << " pairs\n";
    return 1;
  }
  for (usize i = 0; i < batch.size(); ++i) {
    if (!(sharded.results[i] == unsharded.results[i])) {
      std::cerr << "hybrid: sharded-vs-unsharded divergence on pair " << i
                << "\n";
      return 1;
    }
  }
  std::cout << "  sharded : 4 view shards bit-identical to the unsharded "
               "run, "
            << sharded.timings.bases_copied << " bases copied (hybrid run: "
            << t.bases_copied << ")\n";

  BenchReport report("hybrid");
  report.set_param("pairs", static_cast<i64>(modeled_pairs));
  report.set_param("sim_dpus", static_cast<i64>(sim_dpus));
  report.set_param("tasklets", static_cast<i64>(tasklets));
  report.set_param("error_rate", error_rate);
  report.set_param("cpu_t1", cpu_t1);
  report.set_param("pipeline", pipeline ? "true" : "false");
  report.set_param("cpu_simd", cpu_simd ? "true" : "false");
  report.set_param("full_alignment", score_only ? "false" : "true");
  report.add_metric("cpu_alone_seconds", t.cpu_alone_seconds, "s");
  report.add_metric("pim_alone_seconds", t.pim_alone_seconds, "s");
  report.add_metric("hybrid_seconds", t.modeled_seconds, "s");
  report.add_metric("hybrid_throughput", pairs_f / t.modeled_seconds,
                    "pairs/s");
  report.add_metric("cpu_fraction", t.cpu_fraction);
  report.add_metric("hybrid_vs_best_single_throughput",
                    best_alone / t.modeled_seconds, "x");
  report.add_metric("verified_pairs", static_cast<double>(verified));
  // Zero-copy tripwires: bases deep-copied to carve the hybrid split and
  // the engine's shards. The CI baseline pins both to exactly 0.
  report.add_metric("bases_copied", static_cast<double>(t.bases_copied));
  report.add_metric("sharded_bases_copied",
                    static_cast<double>(sharded.timings.bases_copied));
  if (!json.empty()) {
    report.write(json);
    std::cout << "\nBenchReport written to " << json << "\n";
  }

  if (t.modeled_seconds > best_alone) {
    std::cerr << "hybrid: modeled time " << t.modeled_seconds
              << "s exceeds the best single backend (" << best_alone
              << "s)\n";
    return 1;
  }
  return 0;
}
