#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"

namespace pimwfa {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(Bits, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(0, 8), 0u);
  EXPECT_EQ(round_up_pow2(1, 8), 8u);
  EXPECT_EQ(round_up_pow2(8, 8), 8u);
  EXPECT_EQ(round_up_pow2(9, 8), 16u);
  EXPECT_EQ(round_up_pow2(1023, 1024), 1024u);
}

TEST(Bits, RoundDownPow2) {
  EXPECT_EQ(round_down_pow2(0, 8), 0u);
  EXPECT_EQ(round_down_pow2(7, 8), 0u);
  EXPECT_EQ(round_down_pow2(8, 8), 8u);
  EXPECT_EQ(round_down_pow2(15, 8), 8u);
}

TEST(Bits, IsAlignedPow2) {
  EXPECT_TRUE(is_aligned_pow2(0, 8));
  EXPECT_TRUE(is_aligned_pow2(16, 8));
  EXPECT_FALSE(is_aligned_pow2(4, 8));
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(Bits, BitsFor) {
  EXPECT_EQ(bits_for(0), 0u);
  EXPECT_EQ(bits_for(1), 0u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(256), 8u);
  EXPECT_EQ(bits_for(257), 9u);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(7);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.next_below(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(9);
  bool seen_lo = false;
  bool seen_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const i64 v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen_lo |= (v == -3);
    seen_hi |= (v == 3);
  }
  EXPECT_TRUE(seen_lo);
  EXPECT_TRUE(seen_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("AbC", "aBc"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(5000000), "5,000,000");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(64 * 1024), "64.00 KiB");
  EXPECT_EQ(format_bytes(64ull * 1024 * 1024), "64.00 MiB");
}

TEST(Strings, FormatSeconds) {
  EXPECT_EQ(format_seconds(2.5), "2.500 s");
  EXPECT_EQ(format_seconds(0.0025), "2.50 ms");
  EXPECT_EQ(format_seconds(2.5e-6), "2.50 us");
}

TEST(Stats, RunningStatsBasic) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(Stats, RunningStatsMerge) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 10; ++i) {
    const double v = i * 1.5 - 3;
    (i < 5 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(Stats, SampleSetQuantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.median(), 51.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Stats, HistogramBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps to first bucket
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Cli, ParsesFlagsAndPositional) {
  // Bare boolean flags must come last or use --flag=value form; a
  // following non-flag token would be consumed as the flag's value.
  const char* argv[] = {"prog", "--pairs", "100", "input.seq", "--scale=0.5",
                        "--verbose"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("pairs", 0), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.5);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "input.seq");
}

TEST(Cli, Fallbacks) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_EQ(cli.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(cli.get_bool("flag", false));
}

TEST(Cli, HelpRequested) {
  const char* argv[] = {"prog", "--help"};
  Cli cli(2, argv);
  EXPECT_TRUE(cli.help_requested());
}

TEST(Cli, RejectsBadInteger) {
  const char* argv[] = {"prog", "--n", "abc"};
  Cli cli(3, argv);
  EXPECT_THROW(cli.get_int("n", 0), InvalidArgument);
}

TEST(Check, ThrowsTypedErrors) {
  EXPECT_THROW(PIMWFA_CHECK(false, "boom"), Error);
  EXPECT_THROW(PIMWFA_ARG_CHECK(false, "bad arg"), InvalidArgument);
  EXPECT_THROW(PIMWFA_HW_CHECK(false, "fault"), HardwareFault);
}

}  // namespace
}  // namespace pimwfa
